package behavior

import (
	"reflect"
	"testing"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/uarch"
)

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: 2, End: 5}
	if iv.Contains(1.9) || !iv.Contains(2) || !iv.Contains(4.9) || iv.Contains(5) {
		t.Fatal("interval containment wrong")
	}
}

func TestFixedTimeline(t *testing.T) {
	tl := FixedTimeline(BluetoothAudio(), Interval{0, 10}, Interval{20, 30})
	for tm, want := range map[float64]bool{5: true, 15: false, 25: true, 35: false} {
		if tl.ActiveAt(tm) != want {
			t.Errorf("ActiveAt(%v) = %v", tm, !want)
		}
	}
}

func TestRandomTimelineBounds(t *testing.T) {
	r := rng.New(1)
	tl := RandomTimeline(MouseMovement(), 100, 8, 6, r)
	if len(tl.On) == 0 {
		t.Fatal("no activity windows generated")
	}
	last := 0.0
	for _, iv := range tl.On {
		if iv.Start < last || iv.End <= iv.Start || iv.End > 100 {
			t.Fatalf("bad interval %+v", iv)
		}
		last = iv.End
	}
}

func TestRandomTimelineDeterministic(t *testing.T) {
	a := RandomTimeline(BluetoothAudio(), 100, 8, 6, rng.New(7))
	b := RandomTimeline(BluetoothAudio(), 100, 8, 6, rng.New(7))
	if len(a.On) != len(b.On) {
		t.Fatal("same seed, different timelines")
	}
	for i := range a.On {
		if a.On[i] != b.On[i] {
			t.Fatal("same seed, different intervals")
		}
	}
}

func TestActivityPresets(t *testing.T) {
	for _, act := range []Activity{BluetoothAudio(), MouseMovement(), Keystrokes()} {
		if act.Module == "" || act.PagesTouched <= 0 || act.EventHz <= 0 {
			t.Errorf("bad preset %+v", act)
		}
	}
	if BluetoothAudio().Module != "bluetooth" || MouseMovement().Module != "psmouse" {
		t.Fatal("§IV-E target modules wrong")
	}
}

func TestDriverRejectsUnloadedModule(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 1)
	k, err := linux.Boot(m, linux.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := Activity{Name: "x", Module: "definitely_not_loaded", PagesTouched: 1, EventHz: 1}
	if _, err := NewDriver(k, FixedTimeline(bad, Interval{0, 1})); err == nil {
		t.Fatal("driver accepted unloaded module")
	}
}

func TestDriverStepTouchesModuleTLB(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 2)
	k, err := linux.Boot(m, linux.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tl := FixedTimeline(BluetoothAudio(), Interval{0, 10})
	d, err := NewDriver(k, tl)
	if err != nil {
		t.Fatal(err)
	}
	lm, _ := k.Module("bluetooth")
	if res, _ := m.TLB.Lookup(lm.Base, m.KernelAS.ASID); res != 0 {
		t.Fatal("module TLB-resident before any event")
	}
	if err := d.Step(5); err != nil { // active window
		t.Fatal(err)
	}
	if res, _ := m.TLB.Lookup(lm.Base, m.KernelAS.ASID); res == 0 {
		t.Fatal("active module not TLB-resident after Step")
	}
	m.EvictTLB()
	if err := d.Step(15); err != nil { // inactive
		t.Fatal(err)
	}
	if res, _ := m.TLB.Lookup(lm.Base, m.KernelAS.ASID); res != 0 {
		t.Fatal("inactive module touched the TLB")
	}
}

// bootDriver builds a deterministic kernel + driver pair for the seekable
// event-source tests.
func bootDriver(t *testing.T, seed uint64, timelines ...*Timeline) (*machine.Machine, *linux.Kernel, *Driver) {
	t.Helper()
	m := machine.New(uarch.IceLake1065G7(), seed)
	k, err := linux.Boot(m, linux.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(k, timelines...)
	if err != nil {
		t.Fatal(err)
	}
	return m, k, d
}

// AdvanceTo must be chunk-composable: advancing in arbitrary pieces leaves
// the machine in exactly the state one big advance produces (the property
// chunked scan workers rely on when they replay disjoint windows).
func TestDriverAdvanceToComposes(t *testing.T) {
	tl := FixedTimeline(BluetoothAudio(), Interval{3, 9}, Interval{14, 20})
	mA, _, dA := bootDriver(t, 33, tl)
	mB, _, dB := bootDriver(t, 33, FixedTimeline(BluetoothAudio(), Interval{3, 9}, Interval{14, 20}))

	dA.AdvanceTo(25)
	for _, cut := range []float64{4, 9.5, 10, 17, 25} {
		dB.AdvanceTo(cut)
	}
	if dA.Now() != 25 || dB.Now() != 25 {
		t.Fatalf("cursors %v / %v, want 25", dA.Now(), dB.Now())
	}
	if !reflect.DeepEqual(tlbResidency(mA, dA), tlbResidency(mB, dB)) {
		t.Fatal("chunked AdvanceTo leaves different TLB residency than one advance")
	}
	if mA.TLB.EntryCount() != mB.TLB.EntryCount() {
		t.Fatal("chunked AdvanceTo leaves different TLB entry count")
	}
}

// tlbResidency reports which of the driver's touched pages are
// TLB-resident (the observable driver effects; raw snapshots differ across
// boots on globally allocated ASIDs).
func tlbResidency(m *machine.Machine, d *Driver) []bool {
	var out []bool
	for _, vas := range d.touch {
		for _, va := range vas {
			res, _ := m.TLB.Lookup(va, m.KernelAS.ASID)
			out = append(out, res != 0)
		}
	}
	return out
}

// ReplayWindow must be stateless (cursor untouched) and equivalent to the
// same window replayed on the bound machine via AdvanceTo.
func TestDriverReplayWindowStateless(t *testing.T) {
	tl := FixedTimeline(MouseMovement(), Interval{0, 12})
	mA, _, dA := bootDriver(t, 34, tl)
	mB, _, dB := bootDriver(t, 34, FixedTimeline(MouseMovement(), Interval{0, 12}))

	dA.ReplayWindow(mA, 2, 8)
	if dA.Now() != 0 {
		t.Fatalf("ReplayWindow moved the cursor to %v", dA.Now())
	}
	dB.Seek(2)
	dB.AdvanceTo(8)
	if !reflect.DeepEqual(tlbResidency(mA, dA), tlbResidency(mB, dB)) {
		t.Fatal("ReplayWindow residency differs from the AdvanceTo equivalent")
	}

	// Rewind repositions without unfiring: machine state stays, cursor 0.
	before := mA.Snapshot()
	dA.Rewind()
	if dA.Now() != 0 {
		t.Fatal("Rewind did not reset the cursor")
	}
	if !reflect.DeepEqual(before, mA.Snapshot()) {
		t.Fatal("Rewind mutated machine state")
	}
}

// An unbounded timeline must materialize to the same schedule however it
// is queried: one big EnsureCoverage, many small ones, or pointwise
// ActiveAt probes in any order all append the same intervals.
func TestUnboundedTimelineMaterializationOrderIrrelevant(t *testing.T) {
	const horizon = 10000.0
	mk := func(seed uint64) *Timeline {
		return UnboundedTimeline(BluetoothAudio(), 12, 18, rng.New(seed))
	}

	eager := mk(9)
	eager.EnsureCoverage(horizon)

	chunked := mk(9)
	for h := 100.0; h <= horizon; h += 100 {
		chunked.EnsureCoverage(h)
	}
	chunked.EnsureCoverage(horizon)

	// Query back-to-front, then front-to-back, interleaved — worst case
	// for any order dependence.
	probed := mk(9)
	for tm := horizon; tm >= 0; tm -= 37.5 {
		probed.ActiveAt(tm)
	}
	probed.EnsureCoverage(horizon)

	if !reflect.DeepEqual(eager.On, chunked.On) {
		t.Fatal("chunked materialization built a different schedule than eager")
	}
	if !reflect.DeepEqual(eager.On, probed.On) {
		t.Fatal("pointwise probing built a different schedule than eager")
	}
	for _, tm := range []float64{0, 1, 4095, 4096, 4097, 8191.5, horizon - 1} {
		if eager.ActiveAt(tm) != probed.ActiveAt(tm) {
			t.Fatalf("ActiveAt(%v) differs across materialization orders", tm)
		}
	}
}

// The lazy generator must agree with RandomTimeline on the shared prefix:
// same seed and parameters produce the same bursts up to RandomTimeline's
// horizon (modulo its final-interval clip).
func TestUnboundedTimelinePrefixMatchesRandomTimeline(t *testing.T) {
	const dur = 2000.0
	bounded := RandomTimeline(MouseMovement(), dur, 12, 18, rng.New(41))
	lazy := UnboundedTimeline(MouseMovement(), 12, 18, rng.New(41))
	lazy.EnsureCoverage(dur)

	if len(bounded.On) == 0 {
		t.Fatal("no bursts generated")
	}
	for i, iv := range bounded.On {
		if i >= len(lazy.On) {
			t.Fatalf("lazy timeline has only %d bursts, bounded has %d", len(lazy.On), len(bounded.On))
		}
		got := lazy.On[i]
		if got.Start != iv.Start {
			t.Fatalf("burst %d starts at %v lazily, %v bounded", i, got.Start, iv.Start)
		}
		// RandomTimeline clips the last burst at its duration; the lazy
		// schedule keeps the full draw.
		if got.End != iv.End && iv.End != dur {
			t.Fatalf("burst %d ends at %v lazily, %v bounded", i, got.End, iv.End)
		}
	}
}

// The horizon-bug reproducer at the timeline level: bursts must keep
// appearing arbitrarily far past the old 4096-tick truncation point.
func TestUnboundedTimelineActivePastOldHorizon(t *testing.T) {
	tl := UnboundedTimeline(BluetoothAudio(), 12, 18, rng.New(7))
	active := 0
	for tick := 4096; tick < 4096+600; tick++ {
		if tl.ActiveAt(float64(tick)) {
			active++
		}
	}
	// meanOn=18 vs meanOff=12 → ~60% duty cycle; anything near zero means
	// the schedule still truncates.
	if active < 100 {
		t.Fatalf("only %d/600 active ticks past t=4096 — timeline still truncated", active)
	}
	if !tl.Unbounded() {
		t.Fatal("Unbounded() false on a lazily extended timeline")
	}
	if bounded := FixedTimeline(BluetoothAudio(), Interval{0, 1}); bounded.Unbounded() {
		t.Fatal("Unbounded() true on a fixed timeline")
	}
}

// EnsureCoverage must guarantee pure reads below the covered horizon (the
// contract concurrent worker replicas rely on).
func TestEnsureCoverageMakesReadsPure(t *testing.T) {
	tl := UnboundedTimeline(Keystrokes(), 12, 18, rng.New(3))
	tl.EnsureCoverage(500)
	cov := tl.CoveredUntil()
	if cov <= 500 {
		t.Fatalf("CoveredUntil %v after EnsureCoverage(500)", cov)
	}
	n := len(tl.On)
	for tm := 0.0; tm <= 500; tm += 0.5 {
		tl.ActiveAt(tm)
	}
	if len(tl.On) != n || tl.CoveredUntil() != cov {
		t.Fatal("reads below the covered horizon mutated the timeline")
	}
}

// The event grid must match the legacy Step loop: for grid-aligned ticks,
// ReplayWindow(m, t, t+1) fires exactly what Step(t) fired.
func TestDriverReplayWindowMatchesStepLoop(t *testing.T) {
	tl := FixedTimeline(BluetoothAudio(), Interval{2, 5}, Interval{7, 8})
	mA, _, dA := bootDriver(t, 35, tl)
	mB, _, dB := bootDriver(t, 35, FixedTimeline(BluetoothAudio(), Interval{2, 5}, Interval{7, 8}))

	for tick := 0; tick < 10; tick++ {
		if err := dA.Step(float64(tick)); err != nil {
			t.Fatal(err)
		}
		dB.ReplayWindow(mB, float64(tick), float64(tick)+1)
	}
	if !reflect.DeepEqual(tlbResidency(mA, dA), tlbResidency(mB, dB)) {
		t.Fatal("windowed replay differs from the legacy Step loop")
	}
	if mA.TLB.EntryCount() != mB.TLB.EntryCount() {
		t.Fatal("windowed replay leaves different TLB entry count")
	}
}
