package behavior

import (
	"testing"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/uarch"
)

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: 2, End: 5}
	if iv.Contains(1.9) || !iv.Contains(2) || !iv.Contains(4.9) || iv.Contains(5) {
		t.Fatal("interval containment wrong")
	}
}

func TestFixedTimeline(t *testing.T) {
	tl := FixedTimeline(BluetoothAudio(), Interval{0, 10}, Interval{20, 30})
	for tm, want := range map[float64]bool{5: true, 15: false, 25: true, 35: false} {
		if tl.ActiveAt(tm) != want {
			t.Errorf("ActiveAt(%v) = %v", tm, !want)
		}
	}
}

func TestRandomTimelineBounds(t *testing.T) {
	r := rng.New(1)
	tl := RandomTimeline(MouseMovement(), 100, 8, 6, r)
	if len(tl.On) == 0 {
		t.Fatal("no activity windows generated")
	}
	last := 0.0
	for _, iv := range tl.On {
		if iv.Start < last || iv.End <= iv.Start || iv.End > 100 {
			t.Fatalf("bad interval %+v", iv)
		}
		last = iv.End
	}
}

func TestRandomTimelineDeterministic(t *testing.T) {
	a := RandomTimeline(BluetoothAudio(), 100, 8, 6, rng.New(7))
	b := RandomTimeline(BluetoothAudio(), 100, 8, 6, rng.New(7))
	if len(a.On) != len(b.On) {
		t.Fatal("same seed, different timelines")
	}
	for i := range a.On {
		if a.On[i] != b.On[i] {
			t.Fatal("same seed, different intervals")
		}
	}
}

func TestActivityPresets(t *testing.T) {
	for _, act := range []Activity{BluetoothAudio(), MouseMovement(), Keystrokes()} {
		if act.Module == "" || act.PagesTouched <= 0 || act.EventHz <= 0 {
			t.Errorf("bad preset %+v", act)
		}
	}
	if BluetoothAudio().Module != "bluetooth" || MouseMovement().Module != "psmouse" {
		t.Fatal("§IV-E target modules wrong")
	}
}

func TestDriverRejectsUnloadedModule(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 1)
	k, err := linux.Boot(m, linux.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := Activity{Name: "x", Module: "definitely_not_loaded", PagesTouched: 1, EventHz: 1}
	if _, err := NewDriver(k, FixedTimeline(bad, Interval{0, 1})); err == nil {
		t.Fatal("driver accepted unloaded module")
	}
}

func TestDriverStepTouchesModuleTLB(t *testing.T) {
	m := machine.New(uarch.IceLake1065G7(), 2)
	k, err := linux.Boot(m, linux.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tl := FixedTimeline(BluetoothAudio(), Interval{0, 10})
	d, err := NewDriver(k, tl)
	if err != nil {
		t.Fatal(err)
	}
	lm, _ := k.Module("bluetooth")
	if res, _ := m.TLB.Lookup(lm.Base, m.KernelAS.ASID); res != 0 {
		t.Fatal("module TLB-resident before any event")
	}
	if err := d.Step(5); err != nil { // active window
		t.Fatal(err)
	}
	if res, _ := m.TLB.Lookup(lm.Base, m.KernelAS.ASID); res == 0 {
		t.Fatal("active module not TLB-resident after Step")
	}
	m.EvictTLB()
	if err := d.Step(15); err != nil { // inactive
		t.Fatal(err)
	}
	if res, _ := m.TLB.Lookup(lm.Base, m.KernelAS.ASID); res != 0 {
		t.Fatal("inactive module touched the TLB")
	}
}
