package fault

import "testing"

// TestScheduleDeterministic: the entire fault schedule is a pure function
// of (seed, site, key, attempt, draw index) — two injectors from the same
// config agree on every decision.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rates: Uniform(0.3)}
	a, b := New(cfg), New(cfg)
	for _, key := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		for attempt := 1; attempt <= 3; attempt++ {
			pa, pb := a.Plan(key, attempt), b.Plan(key, attempt)
			for _, s := range Sites() {
				for draw := 0; draw < 8; draw++ {
					fa, fb := pa.Fire(s), pb.Fire(s)
					if (fa == nil) != (fb == nil) {
						t.Fatalf("site %v key %#x attempt %d draw %d: injectors disagree", s, key, attempt, draw)
					}
					if fa != nil && fa.Error() != fb.Error() {
						t.Fatalf("fault messages differ: %q vs %q", fa, fb)
					}
				}
			}
		}
	}
}

// TestPlanOrderIndependence: what one plan draws never shifts another
// plan's stream — the schedule is immune to goroutine interleaving.
func TestPlanOrderIndependence(t *testing.T) {
	cfg := Config{Seed: 7, Rates: Uniform(0.5)}

	record := func(in *Injector, key uint64) []bool {
		p := in.Plan(key, 1)
		out := make([]bool, 0, 16)
		for _, s := range Sites() {
			for d := 0; d < 2; d++ {
				out = append(out, p.Fire(s) != nil)
			}
		}
		return out
	}

	// Reference: key 5 drawn on a fresh injector.
	want := record(New(cfg), 5)
	// Same key drawn after heavy unrelated traffic on other keys.
	in := New(cfg)
	for k := uint64(100); k < 150; k++ {
		record(in, k)
	}
	got := record(in, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d for key 5 changed after unrelated plans: got %v want %v", i, got, want)
		}
	}
}

// TestSiteIndependence: re-rating one site leaves every other site's
// decisions untouched (per-site seed splits).
func TestSiteIndependence(t *testing.T) {
	base := New(Config{Seed: 9, Rates: Uniform(0.4)})
	probeOff := New(Config{Seed: 9, Rates: Rates{Boot: 0.4, Calibrate: 0.4, Restore: 0.4, Stall: 0.4, Panic: 0.4}})
	for key := uint64(0); key < 64; key++ {
		pa, pb := base.Plan(key, 1), probeOff.Plan(key, 1)
		for _, s := range Sites() {
			if s == Probe {
				if pb.Fire(s) != nil {
					t.Fatalf("zero-rated site fired")
				}
				pa.Fire(s)
				continue
			}
			if (pa.Fire(s) == nil) != (pb.Fire(s) == nil) {
				t.Fatalf("site %v decision for key %d changed when probe was re-rated", s, key)
			}
		}
	}
}

// TestAttemptStreamsFresh: each attempt draws an independent stream, so at
// rate < 1 a retried consumer eventually passes.
func TestAttemptStreamsFresh(t *testing.T) {
	in := New(Config{Seed: 3, Rates: Rates{Boot: 0.5}})
	var fired, passed int
	for key := uint64(0); key < 32; key++ {
		for attempt := 1; attempt <= 4; attempt++ {
			if in.Plan(key, attempt).Fire(Boot) != nil {
				fired++
			} else {
				passed++
			}
		}
	}
	if fired == 0 || passed == 0 {
		t.Fatalf("rate 0.5 over 128 draws: fired=%d passed=%d — streams are not varying", fired, passed)
	}
	if got := in.Fired(Boot); got != uint64(fired) {
		t.Fatalf("Fired(Boot)=%d, counted %d", got, fired)
	}
	if got := in.TotalFired(); got != uint64(fired) {
		t.Fatalf("TotalFired()=%d, counted %d", got, fired)
	}
}

// TestDisabledInjector: a zero config yields a nil injector, and every
// operation on nil injectors and plans is a safe no-op.
func TestDisabledInjector(t *testing.T) {
	if in := New(Config{Seed: 99}); in != nil {
		t.Fatalf("zero-rate config built a live injector")
	}
	var in *Injector
	p := in.Plan(1, 1)
	if p != nil {
		t.Fatalf("nil injector returned non-nil plan")
	}
	for _, s := range Sites() {
		if p.Fire(s) != nil {
			t.Fatalf("nil plan fired")
		}
	}
	if in.Fired(Boot) != 0 || in.TotalFired() != 0 {
		t.Fatalf("nil injector reports fired faults")
	}
}

// TestRateExtremes: rate 1 always fires, rate 0 never does, out-of-range
// rates clamp instead of misbehaving.
func TestRateExtremes(t *testing.T) {
	always := New(Config{Seed: 1, Rates: Rates{Panic: 1, Stall: 5}}) // 5 clamps to 1
	never := New(Config{Seed: 1, Rates: Rates{Panic: 1, Boot: -3}})  // -3 clamps to 0
	for key := uint64(0); key < 16; key++ {
		p := always.Plan(key, 1)
		if p.Fire(Panic) == nil || p.Fire(Stall) == nil {
			t.Fatalf("rate-1 site did not fire")
		}
		if never.Plan(key, 1).Fire(Boot) != nil {
			t.Fatalf("clamped-to-0 site fired")
		}
	}
}

// TestUniformAndConfigEnabled covers the config helpers.
func TestUniformAndConfigEnabled(t *testing.T) {
	if (Config{Seed: 5}).Enabled() {
		t.Fatalf("zero rates enabled")
	}
	if !(Config{Rates: Uniform(0.01)}).Enabled() {
		t.Fatalf("uniform rates not enabled")
	}
	u := Uniform(0.25)
	for _, s := range Sites() {
		if u.of(s) != 0.25 {
			t.Fatalf("Uniform did not set site %v", s)
		}
	}
}

// TestSiteNames: stable names, including the out-of-range fallback.
func TestSiteNames(t *testing.T) {
	want := []string{"boot", "calibrate", "restore", "probe", "stall", "panic"}
	for i, s := range Sites() {
		if s.String() != want[i] {
			t.Fatalf("site %d named %q, want %q", i, s, want[i])
		}
	}
	if Site(200).String() != "site(200)" {
		t.Fatalf("out-of-range site name: %q", Site(200))
	}
}

// TestFaultErrorStable: the injected error message is a pure function of
// the fault identity (the chaos traces compare these strings).
func TestFaultErrorStable(t *testing.T) {
	f := &Fault{Site: Restore, Key: 0xabc, Attempt: 2}
	const want = "fault: injected restore fault (key 0xabc, attempt 2)"
	if f.Error() != want {
		t.Fatalf("fault message %q, want %q", f, want)
	}
}
