// Package fault is the deterministic seeded fault-injection layer: it
// decides, as a pure function of a single fault seed, which operations in
// the scan service fail — victim boot errors, calibration corruption,
// snapshot-restore verification failures, executor stalls and panics, and
// transient probe errors — so the scheduler's self-healing machinery
// (retries, deadlines, quarantine, shedding) can be driven at a sustained
// fault rate and still be asserted bit-identical run over run.
//
// Determinism contract. Every injection site owns an independent seed,
// split off the injector seed in a fixed order at construction (the same
// rng.Source-split discipline the simulator uses everywhere else), and
// every consumer draws from a per-(site, key, attempt) stream derived from
// that site seed. A decision therefore depends only on
//
//	(injector seed, site, consumer key, attempt, draw index)
//
// — never on wall-clock, goroutine scheduling, or how many other
// consumers drew faults concurrently. Two jobs with identical keys see
// identical fault schedules; the same job retried sees a fresh stream per
// attempt, which is what makes capped retries heal injected faults
// deterministically.
//
// A nil *Injector (and the nil *Plan it hands out) is the disabled state:
// every method is a no-op on a nil receiver, so production paths carry the
// hooks at the cost of one pointer test.
package fault

import (
	"fmt"
	"sync/atomic"

	"repro/internal/rng"
)

// Site names one fault-injection point in the stack.
type Site uint8

// The injection sites, bottom of the stack to top.
const (
	// Boot fails victim construction (linux/winkernel/userspace boot, and
	// the in-scenario boot of cloud jobs).
	Boot Site = iota
	// Calibrate corrupts threshold calibration: the calibration aborts
	// with an error instead of producing poisoned thresholds silently.
	Calibrate
	// Restore fails the snapshot-restore verification that rewinds a
	// session between jobs (machine.Restore's mutation guard).
	Restore
	// Probe injects a transient measurement error at an attack entry
	// point.
	Probe
	// Stall wedges an executor: the job blocks until the scheduler's
	// watchdog deadline fails it.
	Stall
	// Panic makes the executor's job body panic.
	Panic

	numSites
)

var siteNames = [numSites]string{"boot", "calibrate", "restore", "probe", "stall", "panic"}

// String returns the site's stable lowercase name.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Sites lists every injection site in split order.
func Sites() []Site {
	out := make([]Site, numSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// Rates holds the per-site fault probabilities in [0, 1]. The zero value
// injects nothing.
type Rates struct {
	Boot      float64 `json:"boot,omitempty"`
	Calibrate float64 `json:"calibrate,omitempty"`
	Restore   float64 `json:"restore,omitempty"`
	Probe     float64 `json:"probe,omitempty"`
	Stall     float64 `json:"stall,omitempty"`
	Panic     float64 `json:"panic,omitempty"`
}

// Uniform sets every site to probability p.
func Uniform(p float64) Rates {
	return Rates{Boot: p, Calibrate: p, Restore: p, Probe: p, Stall: p, Panic: p}
}

// of returns the rate for one site, clamped to [0, 1].
func (r Rates) of(s Site) float64 {
	var p float64
	switch s {
	case Boot:
		p = r.Boot
	case Calibrate:
		p = r.Calibrate
	case Restore:
		p = r.Restore
	case Probe:
		p = r.Probe
	case Stall:
		p = r.Stall
	case Panic:
		p = r.Panic
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Config seeds an injector.
type Config struct {
	// Seed is the fault seed: the entire fault schedule is a pure function
	// of it (plus each consumer's key and attempt number).
	Seed uint64 `json:"seed"`
	// Rates are the per-site fault probabilities.
	Rates Rates `json:"rates"`
}

// Enabled reports whether any site can ever fire.
func (c Config) Enabled() bool {
	for s := Site(0); s < numSites; s++ {
		if c.Rates.of(s) > 0 {
			return true
		}
	}
	return false
}

// Injector is a seeded fault source shared by every consumer (executor,
// session builder, machine hook) in one scheduler. It is immutable after
// New apart from the fired counters, so concurrent Plan/Fire use needs no
// locking.
type Injector struct {
	rates    [numSites]float64
	siteSeed [numSites]uint64
	fired    [numSites]atomic.Uint64
}

// New builds an injector from cfg, deriving one independent seed per site
// by splitting a source seeded with cfg.Seed in fixed site order. It
// returns nil — the disabled injector — when no site has a positive rate,
// so fault-free schedulers pay nothing beyond nil tests.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	in := &Injector{}
	parent := rng.New(cfg.Seed)
	for s := Site(0); s < numSites; s++ {
		// One split per site in declaration order: each site's stream is
		// independent of every other's, so enabling or re-rating one site
		// never shifts the schedule of another.
		in.siteSeed[s] = parent.Split().Uint64()
		in.rates[s] = cfg.Rates.of(s)
	}
	return in
}

// Plan binds the injector to one consumer identity — in the scan service,
// one (job, attempt) pair. Draws made through the plan are a pure function
// of (injector seed, site, key, attempt, draw index) regardless of what
// any other plan draws concurrently. A nil injector returns a nil plan;
// both are safe to use.
func (in *Injector) Plan(key uint64, attempt int) *Plan {
	if in == nil {
		return nil
	}
	return &Plan{in: in, key: key, attempt: attempt}
}

// Fired returns how many faults the injector has injected at site s.
func (in *Injector) Fired(s Site) uint64 {
	if in == nil {
		return 0
	}
	return in.fired[s].Load()
}

// TotalFired returns the total injected-fault count across all sites.
func (in *Injector) TotalFired() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for s := Site(0); s < numSites; s++ {
		t += in.fired[s].Load()
	}
	return t
}

// Plan is one consumer's deterministic view of the fault schedule: a lazy
// per-site rng.Source derived from (site seed, key, attempt). A plan is
// used by a single goroutine at a time (the executor running the attempt).
type Plan struct {
	in      *Injector
	key     uint64
	attempt int

	src    [numSites]rng.Source
	seeded [numSites]bool
}

// Fire draws the next decision for site s and returns the injected fault,
// or nil for "no fault". Successive calls at the same site advance that
// site's stream (an attempt that restores twice draws twice). Nil plans
// never fire.
func (p *Plan) Fire(s Site) *Fault {
	if p == nil {
		return nil
	}
	rate := p.in.rates[s]
	if rate <= 0 {
		return nil
	}
	if !p.seeded[s] {
		p.src[s].Reseed(mix3(p.in.siteSeed[s], p.key, uint64(p.attempt)))
		p.seeded[s] = true
	}
	if p.src[s].Float64() >= rate {
		return nil
	}
	p.in.fired[s].Add(1)
	return &Fault{Site: s, Key: p.key, Attempt: p.attempt}
}

// Fault is one injected failure. All injected faults are transient by
// construction: a retry draws a fresh per-attempt stream, so capped
// retries heal any fault whose rate is below one.
type Fault struct {
	// Site is where the fault was injected.
	Site Site
	// Key identifies the consumer (the job's fault key in the service).
	Key uint64
	// Attempt is the 1-based attempt the fault fired on.
	Attempt int
}

// Error describes the injected fault. The message is a pure function of
// the fault's identity, so error strings are stable across runs (the chaos
// suite compares them in traces).
func (f *Fault) Error() string {
	return fmt.Sprintf("fault: injected %s fault (key %#x, attempt %d)", f.Site, f.Key, f.Attempt)
}

// mix3 collapses (a, b, c) into one well-mixed 64-bit seed using the
// SplitMix64 finalizer twice, so structured inputs (small attempt numbers,
// similar keys) still land on uncorrelated streams.
func mix3(a, b, c uint64) uint64 {
	return mix(mix(a, b), c)
}

func mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
