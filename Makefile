# Build / verify / benchmark entry points.
#
#   make vet       - go vet
#   make test      - tier-1 (go build ./... && go test ./...)
#   make test-race - the full suite under the race detector (catches
#                    replica-state leaks between pooled/concurrent scans
#                    and scheduler races in the service layer)
#   make ci        - what CI runs: vet + tier-1 + the race-parity suite +
#                    the GOMAXPROCS=2 tier (ci-smp) + the chaos tier +
#                    the observability tier + the cluster tier
#   make ci-smp    - re-run the build and the temporal/engine suites with
#                    GOMAXPROCS=2 (temporal suite under -race): single-core
#                    CI containers otherwise never execute the sharded
#                    fan-out with real goroutine preemption, which is where
#                    merge races and replica-state leaks would bite
#   make ci-chaos  - the seeded fault-injection matrix under -race with
#                    GOMAXPROCS=2: sustained faults across every job kind
#                    must leave every job classified, identical seeds must
#                    produce identical retry/quarantine traces, drains must
#                    win races against stalls and backoffs, and nothing may
#                    leak a goroutine
#   make ci-cluster - the cluster-mode gate under -race with GOMAXPROCS=2:
#                    ring determinism and bounded remap, N=4 cluster parity
#                    with the single-scheduler path (every kind, stateful
#                    sessions included), the zipfian affinity win over
#                    shuffled round-robin, router partial-failure isolation
#                    with per-instance fault seeds, and the stats/metrics
#                    rollup invariants
#   make ci-obs    - the observability gate under -race with GOMAXPROCS=2:
#                    the obs metrics/span suites, the timeline renderer,
#                    the service metrics/trace endpoints, span-tree
#                    determinism under chaos, Store.Stats under
#                    eviction/TTL churn concurrent with scrapes — plus the
#                    zero-alloc guards proving the disabled-recorder hot
#                    path costs nothing
#   make bench     - vet + tier-1 + race + the scan-engine benchmarks;
#                    appends the parsed results to BENCH_scan.json so the
#                    perf trajectory is tracked across PRs
#   make bench-all - same, but runs the full benchmark suite (minutes)
#   make bench-compare - diff the last two BENCH_scan.json entries and warn
#                    on >10% throughput regressions in probes/s, jobs/s or
#                    ticks/s (STRICT=1 to fail on one; check the recorded
#                    num_cpu before blaming the code)
#   make load      - run the scand load generator (mixed attack scenarios
#                    through the service scheduler) and append a jobs/s +
#                    p50/p99 latency entry to BENCH_scan.json, then repeat
#                    through a 4-instance hash-routed cluster on the zipfian
#                    victim skew (the LoadCluster row: session_hit_rate is
#                    the affinity metric bench_compare watches)
#   make load-smoke - a short scand -load pass (mixed workload incl. the
#                    stateful behaviorspy/appfingerprint kinds, nothing
#                    recorded) — the CI smoke that the whole service stack
#                    serves every kind end to end

GO ?= go

.PHONY: all vet test test-race ci ci-smp ci-chaos ci-obs ci-cluster bench bench-all bench-compare load load-smoke

all: vet test

ci: vet test test-race ci-smp ci-chaos ci-obs ci-cluster load-smoke bench-compare

# -count=1: the test cache does not key on GOMAXPROCS, so without it this
# tier would silently reuse the single-P results.
ci-smp:
	GOMAXPROCS=2 $(GO) test -count=1 ./internal/scan ./internal/core ./internal/service
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'Temporal|BehaviorSpy|Fingerprint|Replay|Scan' ./internal/core ./internal/behavior ./internal/service

# The robustness gate: the fault package's schedule-determinism suite plus
# the service chaos matrix (sustained seeded faults over the full mix,
# trace determinism serialized and concurrent, drain-vs-fault races,
# panic/deadline isolation, quarantine, shed/long-poll HTTP paths), all
# under -race with two Ps so watchdogs, orphaned bodies and executors
# genuinely preempt each other.
ci-chaos:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/fault
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'Chaos|Fault|Panic|Deadline|Retry|Drain|Quarantine|WaitCtx|Shed|Wait' ./internal/service

# The cluster gate: placement must be deterministic and bounded (ring
# suite), results must be placement-independent (N=4 parity with the
# single-scheduler path, stateful windows included), affinity must beat
# the shuffled baseline on the zipfian skew, one faulty instance must
# never degrade the others, and the rollup must account exactly — all
# under -race with two Ps so router, executors and scrapes preempt.
ci-cluster:
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'Ring|Cluster|Zipfian' ./internal/service

# The observability gate: instrumentation must be deterministic (identical
# seeds => byte-identical canonical span trees, even under chaos), correct
# under churn (Stats histograms survive eviction/TTL, scrapes race
# completions cleanly), and free when off (the zero-alloc guards on the
# nil-recorder path).
ci-obs:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/obs ./internal/trace
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'SpanTree|Trace|Metrics|StoreStats|KindLatencies|ZeroAlloc' ./internal/service
	GOMAXPROCS=2 $(GO) test -count=1 -run 'TestDisabledPathZeroAlloc' ./internal/obs
	GOMAXPROCS=2 $(GO) test -count=1 -run 'TestSchedulerDisabledTraceZeroAlloc' ./internal/service

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench: vet test
	./scripts/bench.sh 'BenchmarkScan|BenchmarkUserScan|BenchmarkTermSweep|BenchmarkBehaviorSpy|BenchmarkDefenseMatrix|BenchmarkExecMasked|BenchmarkProbeMapped|BenchmarkProbeBatch'

bench-all: vet test
	./scripts/bench.sh '.'

bench-compare:
	./scripts/bench_compare.sh

load:
	$(GO) run ./cmd/scand -load -scan-workers 2
	$(GO) run ./cmd/scand -load -scan-workers 2 -cluster 4 -load-dist zipfian

load-smoke:
	$(GO) run ./cmd/scand -load -jobs 30 -concurrency 6 -victims 5 -scan-workers 2 -bench-out ''
