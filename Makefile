# Build / verify / benchmark entry points.
#
#   make vet       - go vet
#   make test      - tier-1 (go build ./... && go test ./...)
#   make test-race - the full suite under the race detector (catches
#                    replica-state leaks between pooled/concurrent scans)
#   make bench     - vet + tier-1 + race + the scan-engine benchmarks;
#                    appends the parsed results to BENCH_scan.json so the
#                    perf trajectory is tracked across PRs
#   make bench-all - same, but runs the full benchmark suite (minutes)
#   make bench-compare - diff the last two BENCH_scan.json entries and warn
#                    on >10% probes/s regressions (STRICT=1 to fail on one;
#                    check the recorded num_cpu before blaming the code)

GO ?= go

.PHONY: all vet test test-race bench bench-all bench-compare

all: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench: vet test
	./scripts/bench.sh 'BenchmarkScan|BenchmarkUserScan|BenchmarkTermSweep|BenchmarkExecMasked|BenchmarkProbeMapped|BenchmarkProbeBatch'

bench-all: vet test
	./scripts/bench.sh '.'

bench-compare:
	./scripts/bench_compare.sh
