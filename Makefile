# Build / verify / benchmark entry points.
#
#   make vet     - go vet
#   make test    - tier-1 (go build ./... && go test ./...)
#   make bench   - vet + tier-1 + the scan-engine benchmarks; appends the
#                  parsed results to BENCH_scan.json so the perf trajectory
#                  is tracked across PRs
#   make bench-all - same, but runs the full benchmark suite (minutes)

GO ?= go

.PHONY: all vet test bench bench-all

all: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

bench: vet test
	./scripts/bench.sh 'BenchmarkScan|BenchmarkExecMasked|BenchmarkProbeMapped'

bench-all: vet test
	./scripts/bench.sh '.'
