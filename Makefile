# Build / verify / benchmark entry points.
#
#   make vet       - go vet
#   make test      - tier-1 (go build ./... && go test ./...)
#   make test-race - the full suite under the race detector (catches
#                    replica-state leaks between pooled/concurrent scans
#                    and scheduler races in the service layer)
#   make ci        - what CI runs: vet + tier-1 + the race-parity suite
#   make bench     - vet + tier-1 + race + the scan-engine benchmarks;
#                    appends the parsed results to BENCH_scan.json so the
#                    perf trajectory is tracked across PRs
#   make bench-all - same, but runs the full benchmark suite (minutes)
#   make bench-compare - diff the last two BENCH_scan.json entries and warn
#                    on >10% probes/s regressions (STRICT=1 to fail on one;
#                    check the recorded num_cpu before blaming the code)
#   make load      - run the scand load generator (mixed attack scenarios
#                    through the service scheduler) and append a jobs/s +
#                    p50/p99 latency entry to BENCH_scan.json

GO ?= go

.PHONY: all vet test test-race ci bench bench-all bench-compare load

all: vet test

ci: vet test test-race

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench: vet test
	./scripts/bench.sh 'BenchmarkScan|BenchmarkUserScan|BenchmarkTermSweep|BenchmarkExecMasked|BenchmarkProbeMapped|BenchmarkProbeBatch'

bench-all: vet test
	./scripts/bench.sh '.'

bench-compare:
	./scripts/bench_compare.sh

load:
	$(GO) run ./cmd/scand -load -scan-workers 2
