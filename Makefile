# Build / verify / benchmark entry points.
#
#   make vet       - go vet
#   make test      - tier-1 (go build ./... && go test ./...)
#   make test-race - the full suite under the race detector (catches
#                    replica-state leaks between pooled/concurrent scans)
#   make bench     - vet + tier-1 + race + the scan-engine benchmarks;
#                    appends the parsed results to BENCH_scan.json so the
#                    perf trajectory is tracked across PRs
#   make bench-all - same, but runs the full benchmark suite (minutes)

GO ?= go

.PHONY: all vet test test-race bench bench-all

all: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench: vet test
	./scripts/bench.sh 'BenchmarkScan|BenchmarkUserScan|BenchmarkTermSweep|BenchmarkExecMasked|BenchmarkProbeMapped'

bench-all: vet test
	./scripts/bench.sh '.'
