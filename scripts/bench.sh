#!/bin/sh
# bench.sh [pattern] — run the benchmark suite and append structured results
# to BENCH_scan.json (one JSON object per run, newline-delimited) so the
# performance trajectory is tracked across PRs.
#
# Pattern defaults to the scan-engine benchmarks; pass '.' for the full
# suite (minutes).
set -eu

pattern="${1:-BenchmarkScan|BenchmarkUserScan|BenchmarkTermSweep|BenchmarkExecMasked|BenchmarkProbeMapped|BenchmarkProbeBatch}"
out="BENCH_scan.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Host shape: worker-scaling numbers are meaningless without knowing how
# many cores the run actually had (PR containers are often single-core, so
# flat scaling there is expected, not a regression).
num_cpu="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
gomaxprocs="${GOMAXPROCS:-$num_cpu}"

# Pre-flight: numbers from a racy engine are worthless. The race detector
# over the full tree catches replica-state leaks between pooled scans and
# engine merge races before anything is recorded.
echo "pre-flight: go test -race ./..." >&2
go test -race ./...

go test -bench="$pattern" -benchmem -run='^$' . | tee "$raw"

# Parse `BenchmarkName  N  123 ns/op  [value unit]...` lines into JSON.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v pattern="$pattern" \
    -v num_cpu="$num_cpu" -v gomaxprocs="$gomaxprocs" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        gsub(/[^A-Za-z0-9_\/%.-]/, "_", unit)
        if (metrics != "") metrics = metrics ","
        metrics = metrics "\"" unit "\":" val
    }
    if (n > 0) benches = benches ","
    benches = benches sprintf("{\"name\":\"%s\",\"iterations\":%s,%s}", name, iters, metrics)
    n++
}
END {
    printf "{\"date\":\"%s\",\"pattern\":\"%s\",\"num_cpu\":%d,\"gomaxprocs\":%d,\"benchmarks\":[%s]}\n", \
        date, pattern, num_cpu, gomaxprocs, benches
}' "$raw" >> "$out"

echo "appended $(grep -c '^Benchmark' "$raw" || true) benchmark results to $out"
