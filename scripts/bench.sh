#!/bin/sh
# bench.sh [-cpuprofile file] [-memprofile file] [pattern] — run the
# benchmark suite across the GOMAXPROCS scaling matrix and append structured
# results to BENCH_scan.json (one JSON object per run per GOMAXPROCS level,
# newline-delimited) so the performance trajectory is tracked across PRs.
#
# The matrix always contains a GOMAXPROCS=1 row (continuity with the
# single-core PR containers every prior entry was recorded on) and, when the
# host has more cores, a GOMAXPROCS=$(nproc) row — the row that can actually
# show multi-core scaling of the sharded sweeps. Each row records its own
# num_cpu/gomaxprocs so bench_compare.sh only diffs like against like.
#
# -cpuprofile/-memprofile pass through to `go test`; with a multi-row matrix
# the filenames get a ".cN" suffix per GOMAXPROCS level so the rows don't
# overwrite each other's profiles.
#
# Pattern defaults to the scan-engine benchmarks; pass '.' for the full
# suite (minutes).
set -eu

cpuprofile=""
memprofile=""
while [ $# -gt 0 ]; do
    case "$1" in
    -cpuprofile) cpuprofile="$2"; shift 2 ;;
    -memprofile) memprofile="$2"; shift 2 ;;
    *) break ;;
    esac
done

pattern="${1:-BenchmarkScan|BenchmarkUserScan|BenchmarkTermSweep|BenchmarkExecMasked|BenchmarkProbeMapped|BenchmarkProbeBatch|BenchmarkBehaviorSpy|BenchmarkDefenseMatrix}"
out="BENCH_scan.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Host shape: worker-scaling numbers are meaningless without knowing how
# many cores the run actually had (PR containers are often single-core, so
# flat scaling there is expected, not a regression).
num_cpu="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"

# Scaling matrix: 1 core always; all cores when the host has more than one.
matrix="1"
if [ "$num_cpu" -gt 1 ]; then
    matrix="1 $num_cpu"
fi

# Pre-flight: numbers from a racy engine are worthless. The race detector
# over the full tree catches replica-state leaks between pooled scans and
# engine merge races before anything is recorded.
echo "pre-flight: go test -race ./..." >&2
go test -race ./...

total=0
for gmp in $matrix; do
    profflags=""
    suffix=""
    if [ "$matrix" != "1" ]; then suffix=".c$gmp"; fi
    if [ -n "$cpuprofile" ]; then profflags="$profflags -cpuprofile $cpuprofile$suffix"; fi
    if [ -n "$memprofile" ]; then profflags="$profflags -memprofile $memprofile$suffix"; fi

    echo "bench: GOMAXPROCS=$gmp (of $num_cpu cpus)" >&2
    # shellcheck disable=SC2086 # profflags is intentionally word-split
    GOMAXPROCS="$gmp" go test -bench="$pattern" -benchmem -run='^$' $profflags . | tee "$raw"

    # Parse `BenchmarkName  N  123 ns/op  [value unit]...` lines into JSON.
    awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v pattern="$pattern" \
        -v num_cpu="$num_cpu" -v gomaxprocs="$gmp" '
    BEGIN { n = 0 }
    /^Benchmark/ {
        name = $1; iters = $2
        metrics = ""
        for (i = 3; i + 1 <= NF; i += 2) {
            val = $i; unit = $(i + 1)
            gsub(/[^A-Za-z0-9_\/%.-]/, "_", unit)
            if (metrics != "") metrics = metrics ","
            metrics = metrics "\"" unit "\":" val
        }
        if (n > 0) benches = benches ","
        benches = benches sprintf("{\"name\":\"%s\",\"iterations\":%s,%s}", name, iters, metrics)
        n++
    }
    END {
        printf "{\"date\":\"%s\",\"pattern\":\"%s\",\"num_cpu\":%d,\"gomaxprocs\":%d,\"benchmarks\":[%s]}\n", \
            date, pattern, num_cpu, gomaxprocs, benches
    }' "$raw" >> "$out"

    total=$((total + $(grep -c '^Benchmark' "$raw" || true)))
done

echo "appended $total benchmark results to $out ($(echo $matrix | wc -w) GOMAXPROCS level(s))"
