#!/bin/sh
# bench_compare.sh [file] — diff the latest entry of BENCH_scan.json
# (newline-delimited JSON, one object per bench.sh run) against the most
# recent PREVIOUS entry recorded on the same host shape (matching num_cpu
# AND gomaxprocs), per benchmark, and warn when any throughput rate —
# probes/s (probe benchmarks), jobs/s (service/load benchmarks), ticks/s
# (temporal benchmarks), or session_hit_rate (the load/cluster cache
# affinity metric) — dropped by more than 10%.
#
# Since bench.sh records one entry per GOMAXPROCS level of its scaling
# matrix, comparing the raw last two entries would diff a multi-core row
# against a 1-core row and report the host, not the code. Matching on
# num_cpu/gomaxprocs keeps the trajectory apples-to-apples. Exit status is
# 0 unless STRICT=1 is set, in which case any real regression fails the
# run.
set -eu

file="${1:-BENCH_scan.json}"
if [ ! -f "$file" ]; then
    echo "bench_compare: $file not found (run make bench first)" >&2
    exit 1
fi
# Count entries, not raw newlines: a final line without a trailing newline
# is still an entry, and blank lines are not.
entries="$(grep -c '{' "$file" || true)"
if [ "$entries" -lt 2 ]; then
    echo "bench_compare: only $entries run(s) recorded in $file — need two to compare (run make bench again)" >&2
    exit 0
fi

# Pull one scalar field out of a JSON object line (shell-side twin of the
# awk field() below).
jfield() {
    printf '%s\n' "$1" | sed -n "s/.*\"$2\":\([^,}\"]*\).*/\1/p"
}

latest="$(grep '{' "$file" | tail -n 1)"
want_cpu="$(jfield "$latest" num_cpu)"
want_gmp="$(jfield "$latest" gomaxprocs)"

# Most recent earlier entry with the same host shape AND at least one
# benchmark name in common with the latest entry. Name matching matters
# now that `make load` appends both a LoadMixed and a LoadCluster row per
# run: the entry adjacent to the latest is usually the *other* row, and
# diffing disjoint sets would silently compare nothing — each series must
# find its own predecessor.
names_of() { printf '%s\n' "$1" | grep -o '"name":"[^"]*"' | sort -u; }
latest_names="$(names_of "$latest")"
prev=""
while IFS= read -r cand; do
    [ -n "$cand" ] || continue
    if [ -n "$(printf '%s\n%s\n' "$latest_names" "$(names_of "$cand")" | sort | uniq -d)" ]; then
        prev="$cand"
        break
    fi
done <<EOF
$(grep '{' "$file" | sed '$d' | grep -F "\"num_cpu\":$want_cpu,\"gomaxprocs\":$want_gmp," | sed -n '1!G;h;$p' || true)
EOF
if [ -z "$prev" ]; then
    echo "bench_compare: no earlier entry matches the latest host shape (num_cpu=$want_cpu gomaxprocs=$want_gmp) and benchmark set — nothing comparable yet"
    exit 0
fi

printf '%s\n%s\n' "$prev" "$latest" | awk -v strict="${STRICT:-0}" '
# Pull one scalar field out of a JSON object string.
function field(s, key,    re, v) {
    re = "\"" key "\":[^,}]*"
    if (match(s, re) == 0) return ""
    v = substr(s, RSTART, RLENGTH)
    sub("\"" key "\":", "", v)
    gsub(/"/, "", v)
    return v
}
# Every rate the trajectory file records: probe benchmarks report
# probes/s, service and load benchmarks jobs/s, temporal benchmarks
# ticks/s, and load/cluster entries session_hit_rate (cache affinity —
# the metric the cluster router exists to raise). Each is compared
# independently per benchmark name.
BEGIN { metrics[1] = "probes/s"; metrics[2] = "jobs/s"; metrics[3] = "ticks/s"; metrics[4] = "session_hit_rate"; nmetrics = 4 }
{
    line[NR] = $0
    n = split($0, parts, /\{"name":/)
    for (i = 2; i <= n; i++) {
        obj = parts[i]
        name = obj
        sub(/^"/, "", name)
        sub(/".*/, "", name) # cut at the closing quote of the name
        for (k = 1; k <= nmetrics; k++) {
            val = field(obj, metrics[k])
            if (val != "") rate[NR, metrics[k], name] = val
        }
        ns = field(obj, "ns/op")
        if (ns != "") nsop[NR, name] = ns
        if (NR == 2) names[name] = 1
    }
    cpu[NR] = field($0, "num_cpu")
    gmp[NR] = field($0, "gomaxprocs")
    date[NR] = field($0, "date")
}
END {
    printf "comparing %s -> %s (matched host shape: cpus=%s gomaxprocs=%s)\n", date[1], date[2], cpu[2], gmp[2]
    worst = 0
    compared = 0
    for (name in names) {
        for (k = 1; k <= nmetrics; k++) {
            metric = metrics[k]
            if (!((1, metric, name) in rate) || rate[1, metric, name] == 0) continue
            if (!((2, metric, name) in rate)) continue
            old = rate[1, metric, name]; new = rate[2, metric, name]
            pct = 100 * (new - old) / old
            mark = ""
            if (pct < -10) { mark = "  <-- REGRESSION"; bad++ }
            if (pct < worst) worst = pct
            compared++
            # Hit rates live in [0,1]; whole-number formatting would
            # round them to 0/1.
            fmt = "  %-40s %12.0f -> %12.0f %-8s (%+6.1f%%)%s\n"
            if (metric == "session_hit_rate") fmt = "  %-40s %12.3f -> %12.3f %-8s (%+6.1f%%)%s\n"
            printf fmt, name, old, new, metric, pct, mark
        }
    }
    if (compared == 0) {
        # Disjoint benchmark sets: e.g. a scand-load throughput entry next
        # to a probe-bench entry. Nothing comparable is not a regression.
        print "bench_compare: the last two runs share no throughput benchmarks (disjoint sets) — nothing to compare"
        exit 0
    }
    if (bad > 0) {
        printf "bench_compare: %d rate(s) regressed >10%% across probes/s, jobs/s, ticks/s, session_hit_rate (worst %.1f%%)\n", bad, worst
        if (cpu[1] != cpu[2])
            printf "bench_compare: note: core count changed (%s -> %s); host change, not code?\n", cpu[1], cpu[2]
        if (strict == 1) exit 1
    } else {
        print "bench_compare: no regression >10% (probes/s, jobs/s, ticks/s, session_hit_rate)"
    }
}'
